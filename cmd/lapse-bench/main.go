// Command lapse-bench runs the repository's performance workloads and
// writes a machine-readable BENCH_<rev>.json, giving the repo a perf
// trajectory: CI runs it on every change and archives the JSON, so any two
// revisions can be diffed for throughput, message counts, and bytes moved.
//
// The workloads are the hot-key suite of internal/harness — uniform,
// Zipf-skewed, and word2vec-negative-sampling-like access patterns — each
// run under every parameter-management technique (relocation-only,
// localize-per-access, top-k replication).
//
// Usage:
//
//	lapse-bench [-quick] [-rev <id>] [-out <dir>]
//
// -quick shrinks the sweep for smoke runs (CI); -rev overrides the revision
// id (default: git rev-parse --short HEAD, falling back to "dev").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"lapse/internal/harness"
)

// Result is one measured (workload, mode, parallelism) cell.
type Result struct {
	Workload            string  `json:"workload"`
	Mode                string  `json:"mode"`
	Nodes               int     `json:"nodes"`
	Workers             int     `json:"workers"`
	Ops                 int64   `json:"ops"`
	Seconds             float64 `json:"seconds"`
	Throughput          float64 `json:"throughput_ops_per_sec"`
	NetworkMessages     int64   `json:"network_messages"`
	NetworkBytes        int64   `json:"network_bytes"`
	LocalReads          int64   `json:"local_reads"`
	RemoteReads         int64   `json:"remote_reads"`
	ReplicaHits         int64   `json:"replica_hits"`
	ReplicaSyncMessages int64   `json:"replica_sync_messages"`
	Relocations         int64   `json:"relocations"`
}

// Report is the top-level BENCH_<rev>.json document.
type Report struct {
	Rev     string    `json:"rev"`
	Time    time.Time `json:"time"`
	Quick   bool      `json:"quick"`
	Results []Result  `json:"results"`
}

func main() {
	quick := flag.Bool("quick", false, "reduced sweep for smoke runs")
	rev := flag.String("rev", "", "revision id for the output file name (default: git short hash)")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	if *rev == "" {
		*rev = gitRev()
	}
	report := run(*quick, *rev)
	path := filepath.Join(*out, fmt.Sprintf("BENCH_%s.json", *rev))
	if err := write(report, path); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d results)\n", path, len(report.Results))
	for _, r := range report.Results {
		fmt.Printf("%-8s %-11s %dx%d  %9.0f ops/s  msgs=%-6d remote-reads=%-6d replica-hits=%d\n",
			r.Workload, r.Mode, r.Nodes, r.Workers, r.Throughput, r.NetworkMessages, r.RemoteReads, r.ReplicaHits)
	}
}

// run executes the sweep and assembles the report.
func run(quick bool, rev string) Report {
	pars := []harness.Parallelism{{Nodes: 2, Workers: 2}, {Nodes: 4, Workers: 4}}
	if quick {
		pars = pars[:1]
	}
	report := Report{Rev: rev, Time: time.Now().UTC(), Quick: quick}
	// Deterministic iteration order for diffable output.
	workloads := harness.HotKeyWorkloads()
	for _, name := range []string{"uniform", "zipf", "w2vneg"} {
		cfg := workloads[name]
		if quick {
			cfg.OpsPerWorker /= 4
		} else {
			// Full runs use the paper's simulated testbed network so
			// latency effects show in throughput.
			cfg.Net = harness.NetProfile(0) // Nodes filled in by RunHotKeys
		}
		for _, par := range pars {
			for _, mode := range harness.HotKeyModes() {
				pt := harness.RunHotKeys(par, cfg, mode)
				report.Results = append(report.Results, Result{
					Workload:            name,
					Mode:                string(mode),
					Nodes:               par.Nodes,
					Workers:             par.Workers,
					Ops:                 pt.Ops,
					Seconds:             pt.Elapsed.Seconds(),
					Throughput:          pt.Throughput(),
					NetworkMessages:     pt.Net.RemoteMessages,
					NetworkBytes:        pt.Net.RemoteBytes,
					LocalReads:          pt.Stats.LocalReads,
					RemoteReads:         pt.Stats.RemoteReads,
					ReplicaHits:         pt.Stats.ReplicaHits,
					ReplicaSyncMessages: pt.Stats.ReplicaSyncMessages,
					Relocations:         pt.Stats.Relocations,
				})
			}
		}
	}
	return report
}

// write marshals the report to path.
func write(r Report, path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("lapse-bench: marshal: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("lapse-bench: %w", err)
	}
	return nil
}

// gitRev returns the short hash of HEAD, or "dev" outside a git checkout.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	return strings.TrimSpace(string(out))
}
