// Command lapse-bench runs the repository's performance workloads and
// writes a machine-readable BENCH_<rev>.json, giving the repo a perf
// trajectory: CI runs it on every change, compares against the committed
// BENCH_baseline.json, and archives the JSON, so any two revisions can be
// diffed for throughput, message counts, and bytes moved.
//
// The workloads are the hot-key suite of internal/harness — uniform,
// Zipf-skewed, and word2vec-negative-sampling-like access patterns — each
// run under every parameter-management technique (relocation-only,
// localize-per-access, top-k replication, and the adaptive online
// controller). The uniform and Zipf workloads
// additionally sweep the server shard count (1 and 4), measuring the
// multi-core server scaling of the sharded runtime. A final set of cells
// re-runs the Zipf workload as a real multi-process deployment — one OS
// process per node, over loopback TCP and over shared-memory rings — so the
// trajectory also covers the real transports (see multiproc.go).
//
// Usage:
//
//	lapse-bench [-quick] [-rev <id>] [-out <dir>] [-compare <file>] [-adaptive-gate]
//
// -quick shrinks the sweep for smoke runs (CI); -rev overrides the revision
// id (default: git rev-parse --short HEAD, falling back to "dev");
// -compare loads a previous report and exits nonzero if any matching cell
// regressed by more than 20% throughput or allocated more than 20% (plus a
// small absolute slack) more per operation. -adaptive-gate exits nonzero if
// any adaptive cell falls behind the best static technique for the same cell
// by more than the tolerance (see adaptiveGate).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"lapse/internal/harness"
)

// regressionTolerance is the fractional throughput drop — or allocs/op
// increase — against the comparison baseline that fails the run.
const regressionTolerance = 0.20

// allocSlack is the absolute allocs/op headroom added on top of the
// fractional tolerance, so near-zero cells don't trip the gate on noise.
const allocSlack = 2.0

// latencyTolerance is the fractional pull-p99 increase against the baseline
// that fails the run; latencySlackNs is the absolute headroom on top, so
// microsecond-scale cells don't trip on scheduler jitter.
const (
	latencyTolerance = 0.25
	latencySlackNs   = 20_000
)

// Result is one measured (workload, mode, parallelism, shards) cell.
type Result struct {
	Workload string `json:"workload"`
	Mode     string `json:"mode"`
	Nodes    int    `json:"nodes"`
	Workers  int    `json:"workers"`
	Shards   int    `json:"shards"`
	// Transport distinguishes the multi-process real-transport cells
	// ("tcp", "shm"); empty for the in-process simulated-network sweep, so
	// cells from reports predating the column keep matching.
	Transport           string  `json:"transport,omitempty"`
	Ops                 int64   `json:"ops"`
	Seconds             float64 `json:"seconds"`
	Throughput          float64 `json:"throughput_ops_per_sec"`
	AllocsPerOp         float64 `json:"allocs_per_op"`
	BytesPerOp          float64 `json:"bytes_per_op"`
	NetworkMessages     int64   `json:"network_messages"`
	NetworkBytes        int64   `json:"network_bytes"`
	LocalReads          int64   `json:"local_reads"`
	RemoteReads         int64   `json:"remote_reads"`
	ReplicaHits         int64   `json:"replica_hits"`
	ReplicaSyncMessages int64   `json:"replica_sync_messages"`
	Relocations         int64   `json:"relocations"`
	// AdaptTransitions counts the transitions the adaptive controller
	// executed (promotions + demotions + controller relocations); zero for
	// the static modes.
	AdaptTransitions int64 `json:"adapt_transitions,omitempty"`
	// PullP50Ns/PullP99Ns/PullP999Ns are end-to-end pull-latency quantiles
	// in nanoseconds over the measured window (fast and slow paths merged;
	// the shared-memory fast path is sampled 1-in-8 with matching weight).
	// For the open-loop serving cells they hold sojourn-time quantiles
	// (completion minus scheduled arrival) instead, so the same latency
	// gate covers the serving SLO. Zero in reports predating the columns.
	PullP50Ns  int64 `json:"pull_p50_ns,omitempty"`
	PullP99Ns  int64 `json:"pull_p99_ns,omitempty"`
	PullP999Ns int64 `json:"pull_p999_ns,omitempty"`
	// ServingHits/LeaseGrants/LeaseInvalidations are the serving-tier
	// counters of the measured window; zero outside the serving cells.
	ServingHits        int64 `json:"serving_hits,omitempty"`
	LeaseGrants        int64 `json:"lease_grants,omitempty"`
	LeaseInvalidations int64 `json:"lease_invalidations,omitempty"`
}

// cell identifies a result across reports for regression comparison.
type cell struct {
	Workload  string
	Mode      string
	Nodes     int
	Workers   int
	Shards    int
	Transport string
}

func (r Result) cell() cell {
	return cell{Workload: r.Workload, Mode: r.Mode, Nodes: r.Nodes, Workers: r.Workers,
		Shards: r.Shards, Transport: r.Transport}
}

// Report is the top-level BENCH_<rev>.json document.
type Report struct {
	Rev     string    `json:"rev"`
	Time    time.Time `json:"time"`
	Quick   bool      `json:"quick"`
	Results []Result  `json:"results"`
}

func main() {
	if spec := os.Getenv(mpChildEnv); spec != "" {
		os.Exit(runChildNode(spec))
	}
	quick := flag.Bool("quick", false, "reduced sweep for smoke runs")
	rev := flag.String("rev", "", "revision id for the output file name (default: git short hash)")
	out := flag.String("out", ".", "output directory")
	compareWith := flag.String("compare", "", "baseline BENCH_*.json to compare against; exit nonzero on >20% throughput regression")
	gateAdaptive := flag.Bool("adaptive-gate", false, "exit nonzero if any adaptive cell falls behind the best static technique by more than the tolerance")
	flag.Parse()

	if *rev == "" {
		*rev = gitRev()
	}
	report := run(*quick, *rev)
	path := filepath.Join(*out, fmt.Sprintf("BENCH_%s.json", *rev))
	if err := write(report, path); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d results)\n", path, len(report.Results))
	for _, r := range report.Results {
		fmt.Printf("%-8s %-11s %dx%ds%d%-4s  %9.0f ops/s  %6.1f allocs/op  %7.0f B/op  p50=%-9v p99=%-9v p999=%-9v msgs=%-6d remote-reads=%-6d replica-hits=%d\n",
			r.Workload, r.Mode, r.Nodes, r.Workers, r.Shards, transportTag(r.Transport),
			r.Throughput, r.AllocsPerOp, r.BytesPerOp,
			time.Duration(r.PullP50Ns), time.Duration(r.PullP99Ns), time.Duration(r.PullP999Ns),
			r.NetworkMessages, r.RemoteReads, r.ReplicaHits)
	}
	printTransportRatios(report)
	if *compareWith != "" {
		if err := compare(report, *compareWith); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("no cell regressed more than %.0f%% vs %s\n", regressionTolerance*100, *compareWith)
	}
	if *gateAdaptive {
		if err := adaptiveGate(report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("adaptive matched the best static configuration in every cell")
	}
}

// Adaptive-gate tolerances: how far an adaptive cell may fall below the best
// static technique for the same cell. The skewed workloads are where adaptive
// management must earn its keep, so they get the tighter bound; the uniform
// workload has nothing for the controller to exploit, so it only has to stay
// out of the way.
const (
	adaptiveToleranceSkewed = 0.10
	adaptiveTolerance       = 0.20
)

// adaptiveGate checks the ISSUE's acceptance bar: in every measured cell, the
// adaptive controller — under ONE set of default knobs — must reach at least
// (1 - tolerance) of the best statically configured technique's throughput.
// "Static" means relocation and replication; localize is excluded because it
// is a different application program (it issues extra Localize calls per
// access), not an alternative management setting for the same one.
func adaptiveGate(r Report) error {
	type spot struct {
		Workload  string
		Nodes     int
		Workers   int
		Shards    int
		Transport string
	}
	bestStatic := make(map[spot]Result)
	adaptive := make(map[spot]Result)
	for _, res := range r.Results {
		s := spot{res.Workload, res.Nodes, res.Workers, res.Shards, res.Transport}
		switch res.Mode {
		case string(harness.HotKeyRelocation), string(harness.HotKeyReplication):
			if b, ok := bestStatic[s]; !ok || res.Throughput > b.Throughput {
				bestStatic[s] = res
			}
		case string(harness.HotKeyAdaptive):
			adaptive[s] = res
		}
	}
	if len(adaptive) == 0 {
		return fmt.Errorf("lapse-bench: adaptive-gate: no adaptive cells in this sweep")
	}
	var failures []string
	for s, a := range adaptive {
		b, ok := bestStatic[s]
		if !ok || b.Throughput <= 0 {
			continue
		}
		tol := adaptiveTolerance
		if s.Workload == "zipf" || s.Workload == "w2vneg" {
			tol = adaptiveToleranceSkewed
		}
		if a.Throughput < b.Throughput*(1-tol) {
			failures = append(failures,
				fmt.Sprintf("  %-8s %dx%ds%d%s: adaptive %.0f ops/s vs best static (%s) %.0f ops/s (-%.0f%%, tolerance %.0f%%)",
					s.Workload, s.Nodes, s.Workers, s.Shards, transportTag(s.Transport),
					a.Throughput, b.Mode, b.Throughput, (1-a.Throughput/b.Throughput)*100, tol*100))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("lapse-bench: adaptive fell behind the best static configuration:\n%s", strings.Join(failures, "\n"))
	}
	return nil
}

// run executes the sweep and assembles the report.
func run(quick bool, rev string) Report {
	pars := []harness.Parallelism{{Nodes: 2, Workers: 2}, {Nodes: 4, Workers: 4}}
	if quick {
		pars = pars[:1]
	}
	report := Report{Rev: rev, Time: time.Now().UTC(), Quick: quick}
	// Deterministic iteration order for diffable output.
	workloads := harness.HotKeyWorkloads()
	for _, name := range []string{"uniform", "zipf", "w2vneg"} {
		cfg := workloads[name]
		if quick {
			cfg.OpsPerWorker /= 2
		} else {
			// Full runs use the paper's simulated testbed network so
			// latency effects show in throughput.
			cfg.Net = harness.NetProfile(0) // Nodes filled in by RunHotKeys
		}
		// The uniform and Zipf workloads sweep the server shard count;
		// w2vneg keeps the single-shard layout as a fixed reference.
		shardCounts := []int{1}
		if name == "uniform" || name == "zipf" {
			shardCounts = []int{1, 4}
		}
		for _, par := range pars {
			for _, shards := range shardCounts {
				par := par
				par.Shards = shards
				for _, mode := range harness.HotKeyModes() {
					// Quick (CI) cells are short enough that scheduler
					// noise dwarfs real effects: measure best-of-3, so
					// the -compare gate trips on genuine regressions,
					// not on one descheduled run.
					attempts := 1
					if quick {
						attempts = 3
					}
					pt := harness.RunHotKeys(par, cfg, mode)
					allocs, bytesPer := pt.AllocsPerOp(), pt.BytesPerOp()
					p50, p99, p999 := pullQuantiles(pt)
					for a := 1; a < attempts; a++ {
						again := harness.RunHotKeys(par, cfg, mode)
						if again.Throughput() > pt.Throughput() {
							pt = again
						}
						// Allocations and latency quantiles are compared as
						// per-cell minima too: best-of-N suppresses one-off
						// GC/scheduler noise.
						allocs = min(allocs, again.AllocsPerOp())
						bytesPer = min(bytesPer, again.BytesPerOp())
						a50, a99, a999 := pullQuantiles(again)
						p50, p99, p999 = min(p50, a50), min(p99, a99), min(p999, a999)
					}
					report.Results = append(report.Results, Result{
						Workload:            name,
						Mode:                string(mode),
						Nodes:               par.Nodes,
						Workers:             par.Workers,
						Shards:              shards,
						Ops:                 pt.Ops,
						Seconds:             pt.Elapsed.Seconds(),
						Throughput:          pt.Throughput(),
						AllocsPerOp:         allocs,
						BytesPerOp:          bytesPer,
						NetworkMessages:     pt.Net.RemoteMessages,
						NetworkBytes:        pt.Net.RemoteBytes,
						LocalReads:          pt.Stats.LocalReads,
						RemoteReads:         pt.Stats.RemoteReads,
						ReplicaHits:         pt.Stats.ReplicaHits,
						ReplicaSyncMessages: pt.Stats.ReplicaSyncMessages,
						Relocations:         pt.Stats.Relocations,
						AdaptTransitions:    pt.Stats.AdaptPromotions + pt.Stats.AdaptDemotions + pt.Stats.AdaptRelocations,
						PullP50Ns:           p50,
						PullP99Ns:           p99,
						PullP999Ns:          p999,
					})
				}
			}
		}
	}
	// The serving cells: the open-loop read workload at one fixed arrival
	// schedule over the simulated testbed network, through the plain
	// batched Pull path and through the lease-cached MultiGet path. The
	// sojourn-time quantiles land in the Pull*Ns columns so the -compare
	// latency gate guards the serving SLO.
	report.Results = append(report.Results, runServingCells(quick)...)
	// The real-transport cells: co-located multi-process deployments over
	// loopback TCP and shared-memory rings (see multiproc.go).
	mp, err := runMultiProcessCells(quick)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	report.Results = append(report.Results, mp...)
	return report
}

// compare fails if any cell of the current report that also exists in the
// baseline report lost more than regressionTolerance of its throughput.
// Cells only present on one side (new workloads, removed sweeps) are
// ignored, so the baseline does not have to be regenerated for every sweep
// change.
func compare(cur Report, baselinePath string) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("lapse-bench: compare: %w", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("lapse-bench: compare: parse %s: %w", baselinePath, err)
	}
	if base.Quick != cur.Quick {
		return fmt.Errorf("lapse-bench: compare: baseline %s is a quick=%v sweep, current run is quick=%v — throughputs are not comparable",
			baselinePath, base.Quick, cur.Quick)
	}
	baseBy := make(map[cell]Result, len(base.Results))
	// Reports from before the allocs column decode every cell as 0; a report
	// with the column has at least one nonzero cell (a whole sweep cannot
	// run on literally zero heap allocations). Detecting the column at the
	// report level keeps the gate armed for individual cells whose baseline
	// genuinely reaches 0 allocs/op.
	baseHasAllocs := false
	baseHasLat := false
	for _, r := range base.Results {
		baseBy[r.cell()] = r
		if r.AllocsPerOp > 0 {
			baseHasAllocs = true
		}
		if r.PullP99Ns > 0 {
			baseHasLat = true
		}
	}
	var regressions []string
	matched := 0
	for _, r := range cur.Results {
		b, ok := baseBy[r.cell()]
		if !ok || b.Throughput <= 0 {
			continue
		}
		matched++
		drop := 1 - r.Throughput/b.Throughput
		if drop > regressionTolerance {
			regressions = append(regressions,
				fmt.Sprintf("  %-8s %-11s %dx%ds%d%s: %.0f -> %.0f ops/s (-%.0f%%)",
					r.Workload, r.Mode, r.Nodes, r.Workers, r.Shards, transportTag(r.Transport),
					b.Throughput, r.Throughput, drop*100))
		}
		// Allocation gate: a cell may not allocate more than 20% (plus a
		// small absolute slack) over the baseline — zero-alloc baselines
		// included. Baselines without the allocs column skip the gate.
		if baseHasAllocs && r.AllocsPerOp > b.AllocsPerOp*(1+regressionTolerance)+allocSlack {
			regressions = append(regressions,
				fmt.Sprintf("  %-8s %-11s %dx%ds%d%s: %.1f -> %.1f allocs/op",
					r.Workload, r.Mode, r.Nodes, r.Workers, r.Shards, transportTag(r.Transport),
					b.AllocsPerOp, r.AllocsPerOp))
		}
		// Tail-latency gate: pull p99 may not grow more than 25% plus an
		// absolute 20µs of jitter headroom. Baselines without the latency
		// columns skip the gate (detected like the allocs column above).
		if baseHasLat && float64(r.PullP99Ns) > float64(b.PullP99Ns)*(1+latencyTolerance)+latencySlackNs {
			regressions = append(regressions,
				fmt.Sprintf("  %-8s %-11s %dx%ds%d%s: pull p99 %v -> %v",
					r.Workload, r.Mode, r.Nodes, r.Workers, r.Shards, transportTag(r.Transport),
					time.Duration(b.PullP99Ns), time.Duration(r.PullP99Ns)))
		}
	}
	if matched == 0 {
		return fmt.Errorf("lapse-bench: compare: no cells of %s match the current sweep", baselinePath)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("lapse-bench: throughput or allocs/op regressed more than %.0f%% vs %s (rev %s):\n%s",
			regressionTolerance*100, baselinePath, base.Rev, strings.Join(regressions, "\n"))
	}
	return nil
}

// pullQuantiles returns a measured point's merged pull-latency p50/p99/p999
// in nanoseconds.
func pullQuantiles(pt harness.HotKeyPoint) (p50, p99, p999 int64) {
	pull := pt.Lat.Pull()
	return pull.Quantile(0.5).Nanoseconds(),
		pull.Quantile(0.99).Nanoseconds(),
		pull.Quantile(0.999).Nanoseconds()
}

// write marshals the report to path.
func write(r Report, path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("lapse-bench: marshal: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("lapse-bench: %w", err)
	}
	return nil
}

// gitRev returns the short hash of HEAD, or "dev" outside a git checkout.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	return strings.TrimSpace(string(out))
}
