package main

import (
	"lapse/internal/harness"
)

// servingPar is the fixed deployment of the open-loop serving cells. The
// comparison is between read paths at one arrival schedule, not a scaling
// sweep, so one parallelism keeps the cells cheap and the baseline stable.
var servingPar = harness.Parallelism{Nodes: 2, Workers: 2, Shards: 1}

// runServingCells measures the open-loop serving workload once per read path
// (plain batched Pull vs lease-cached MultiGet) at the same arrival schedule.
// Like the hot-key cells, quick runs take best-of-3 with per-cell minima for
// the latency and allocation columns so the -compare gate trips on genuine
// regressions rather than one descheduled run.
func runServingCells(quick bool) []Result {
	cfg := harness.ServingWorkload()
	if quick {
		cfg.Requests /= 2
	}
	attempts := 1
	if quick {
		attempts = 3
	}
	results := make([]Result, 0, len(harness.ServingModes()))
	for _, mode := range harness.ServingModes() {
		pt := harness.RunServing(servingPar, cfg, mode)
		allocs, bytesPer := pt.AllocsPerOp(), pt.BytesPerOp()
		p50, p99, p999 := sojournQuantiles(pt)
		for a := 1; a < attempts; a++ {
			again := harness.RunServing(servingPar, cfg, mode)
			if again.Throughput() > pt.Throughput() {
				pt = again
			}
			allocs = min(allocs, again.AllocsPerOp())
			bytesPer = min(bytesPer, again.BytesPerOp())
			a50, a99, a999 := sojournQuantiles(again)
			p50, p99, p999 = min(p50, a50), min(p99, a99), min(p999, a999)
		}
		results = append(results, Result{
			Workload:            "serving",
			Mode:                string(mode),
			Nodes:               servingPar.Nodes,
			Workers:             servingPar.Workers,
			Shards:              1,
			Ops:                 pt.Requests,
			Seconds:             pt.Elapsed.Seconds(),
			Throughput:          pt.Throughput(),
			AllocsPerOp:         allocs,
			BytesPerOp:          bytesPer,
			NetworkMessages:     pt.Net.RemoteMessages,
			NetworkBytes:        pt.Net.RemoteBytes,
			LocalReads:          pt.Stats.LocalReads,
			RemoteReads:         pt.Stats.RemoteReads,
			ReplicaHits:         pt.Stats.ReplicaHits,
			ReplicaSyncMessages: pt.Stats.ReplicaSyncMessages,
			Relocations:         pt.Stats.Relocations,
			PullP50Ns:           p50,
			PullP99Ns:           p99,
			PullP999Ns:          p999,
			ServingHits:         pt.Stats.ServingHits,
			LeaseGrants:         pt.Stats.LeaseGrants,
			LeaseInvalidations:  pt.Stats.LeaseInvalidations,
		})
	}
	return results
}

// sojournQuantiles returns a serving point's open-loop sojourn p50/p99/p999
// in nanoseconds.
func sojournQuantiles(pt harness.ServingPoint) (p50, p99, p999 int64) {
	return pt.Sojourn.Quantile(0.5).Nanoseconds(),
		pt.Sojourn.Quantile(0.99).Nanoseconds(),
		pt.Sojourn.Quantile(0.999).Nanoseconds()
}
