package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lapse/internal/harness"
)

// TestMain lets the test binary stand in for the lapse-bench binary when the
// multi-process sweep re-executes os.Executable() as a cell child.
func TestMain(m *testing.M) {
	if spec := os.Getenv(mpChildEnv); spec != "" {
		os.Exit(runChildNode(spec))
	}
	os.Exit(m.Run())
}

// TestQuickBenchWritesReport runs the quick sweep end to end — including the
// multi-process transport cells, with this test binary re-executed as the
// node children — and validates the BENCH_<rev>.json schema CI archives.
func TestQuickBenchWritesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick sweep with subprocesses")
	}
	// uniform and zipf sweep shards {1,4}; w2vneg runs single-shard; the
	// open-loop serving comparison adds one cell per read path; the
	// multi-process transport sweep adds modes × transports cells.
	report := run(true, "test")
	want := (2*2+1)*1*len(harness.HotKeyModes()) + len(harness.ServingModes()) +
		len(mpModes())*len(mpTransports())
	if len(report.Results) != want {
		t.Fatalf("quick sweep produced %d results, want %d", len(report.Results), want)
	}
	var transports []string
	for _, r := range report.Results {
		if r.Transport != "" {
			transports = append(transports, r.Transport)
			if r.Workload != "zipf" || r.Nodes != mpNodes || r.Shards != mpShards {
				t.Fatalf("unexpected multi-process cell: %+v", r)
			}
		}
	}
	if len(transports) != len(mpModes())*len(mpTransports()) {
		t.Fatalf("multi-process cells = %v, want %d per transport of %v",
			transports, len(mpModes()), mpTransports())
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	if err := write(report, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if got.Rev != "test" || !got.Quick {
		t.Fatalf("report header = rev %q quick %v", got.Rev, got.Quick)
	}
	var sawReplication bool
	for _, r := range got.Results {
		if r.Ops <= 0 || r.Seconds <= 0 || r.Throughput <= 0 {
			t.Fatalf("degenerate result: %+v", r)
		}
		if r.Mode == "replication" {
			sawReplication = true
			if r.Workload != "uniform" && r.ReplicaHits == 0 {
				t.Fatalf("skewed replication run recorded no replica hits: %+v", r)
			}
		}
	}
	if !sawReplication {
		t.Fatal("no replication-mode results in the report")
	}
	// The headline: on the skewed workloads, replication needs far fewer
	// remote reads than relocation-only management.
	byKey := map[string]Result{}
	for _, r := range got.Results {
		byKey[r.Workload+"/"+r.Mode] = r
	}
	base, repl := byKey["w2vneg/relocation"], byKey["w2vneg/replication"]
	if repl.RemoteReads*2 > base.RemoteReads {
		t.Fatalf("w2vneg remote reads: replication %d vs relocation %d, expected a clear win",
			repl.RemoteReads, base.RemoteReads)
	}
	// The serving headline: at the same open-loop arrival schedule, the
	// lease-cached MultiGet path must hold p99 sojourn at least 2x below
	// plain batched Pull, and must actually serve from the cache.
	sPull, sMG := byKey["serving/pull"], byKey["serving/multiget"]
	if sPull.PullP99Ns == 0 || sMG.PullP99Ns == 0 {
		t.Fatalf("serving cells carry no sojourn quantiles: pull %+v multiget %+v", sPull, sMG)
	}
	if sMG.PullP99Ns*2 > sPull.PullP99Ns {
		t.Fatalf("serving p99 sojourn: multiget %v vs pull %v, want at least a 2x win",
			time.Duration(sMG.PullP99Ns), time.Duration(sPull.PullP99Ns))
	}
	if sMG.ServingHits == 0 || sMG.LeaseGrants == 0 {
		t.Fatalf("serving/multiget cell records no cache activity: %+v", sMG)
	}
}

// TestCompareFlagsRegressions pins the -compare contract: a report compared
// against itself passes, a >20% throughput drop against the baseline fails
// and names the cell, and unmatched cells are ignored.
func TestCompareFlagsRegressions(t *testing.T) {
	mk := func(workload string, shards int, throughput float64) Result {
		return Result{Workload: workload, Mode: "relocation", Nodes: 2, Workers: 2,
			Shards: shards, Ops: 100, Seconds: 1, Throughput: throughput}
	}
	dir := t.TempDir()
	baseline := Report{Rev: "base", Results: []Result{
		mk("uniform", 1, 1000),
		mk("uniform", 4, 2000),
		mk("removed", 1, 9999), // only in baseline: must be ignored
	}}
	path := filepath.Join(dir, "BENCH_base.json")
	if err := write(baseline, path); err != nil {
		t.Fatal(err)
	}

	same := Report{Rev: "cur", Results: baseline.Results[:2]}
	if err := compare(same, path); err != nil {
		t.Fatalf("identical report flagged as regression: %v", err)
	}
	within := Report{Rev: "cur", Results: []Result{mk("uniform", 1, 850), mk("uniform", 4, 1700)}}
	if err := compare(within, path); err != nil {
		t.Fatalf("15%% drop flagged as regression: %v", err)
	}
	regressed := Report{Rev: "cur", Results: []Result{mk("uniform", 1, 1000), mk("uniform", 4, 1000)}}
	err := compare(regressed, path)
	if err == nil {
		t.Fatal("50% drop passed the comparison")
	}
	if !strings.Contains(err.Error(), "uniform") || !strings.Contains(err.Error(), "2x2s4") {
		t.Fatalf("regression error does not name the cell: %v", err)
	}
	// A baseline with no matching cells is an error, not a silent pass.
	if err := compare(Report{Rev: "cur", Results: []Result{mk("other", 1, 1)}}, path); err == nil {
		t.Fatal("comparison with zero matched cells passed")
	}
}

// TestCompareReportsAllFailingCells pins that -compare accumulates every
// regressed cell into one error instead of stopping at the first: a run
// where several cells regress — across different metrics — must name each
// one, so a CI failure shows the whole blast radius at once.
func TestCompareReportsAllFailingCells(t *testing.T) {
	mk := func(workload string, throughput, allocs float64, p99 int64) Result {
		return Result{Workload: workload, Mode: "relocation", Nodes: 2, Workers: 2,
			Shards: 1, Ops: 100, Seconds: 1, Throughput: throughput,
			AllocsPerOp: allocs, PullP99Ns: p99}
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_base.json")
	baseline := Report{Rev: "base", Results: []Result{
		mk("uniform", 1000, 10, 100_000),
		mk("zipf", 2000, 10, 100_000),
		mk("serving", 3000, 10, 100_000),
	}}
	if err := write(baseline, path); err != nil {
		t.Fatal(err)
	}
	// Three distinct regressions: a throughput drop, an alloc blow-up, and
	// a p99 latency blow-up, one per cell.
	cur := Report{Rev: "cur", Results: []Result{
		mk("uniform", 500, 10, 100_000),
		mk("zipf", 2000, 40, 100_000),
		mk("serving", 3000, 10, 400_000),
	}}
	err := compare(cur, path)
	if err == nil {
		t.Fatal("three-way regression passed the comparison")
	}
	for _, cell := range []string{"uniform", "zipf", "serving"} {
		if !strings.Contains(err.Error(), cell) {
			t.Fatalf("comparison error does not name regressed cell %q:\n%v", cell, err)
		}
	}
	for _, metric := range []string{"ops/s", "allocs/op", "p99"} {
		if !strings.Contains(err.Error(), metric) {
			t.Fatalf("comparison error does not name regressed metric %q:\n%v", metric, err)
		}
	}
}

// TestCompareFlagsAllocRegressions pins the allocs/op gate: cells within the
// 20%+slack envelope pass, a clear allocation regression fails and names the
// cell, and baselines without the allocs column skip the gate.
func TestCompareFlagsAllocRegressions(t *testing.T) {
	mk := func(throughput, allocs float64) Result {
		return Result{Workload: "uniform", Mode: "relocation", Nodes: 2, Workers: 2,
			Shards: 1, Ops: 100, Seconds: 1, Throughput: throughput, AllocsPerOp: allocs}
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_base.json")
	if err := write(Report{Rev: "base", Results: []Result{mk(1000, 10)}}, path); err != nil {
		t.Fatal(err)
	}
	// 10 → 13 allocs/op stays within 20% + 2 slack.
	if err := compare(Report{Rev: "cur", Results: []Result{mk(1000, 13)}}, path); err != nil {
		t.Fatalf("in-envelope alloc increase flagged: %v", err)
	}
	err := compare(Report{Rev: "cur", Results: []Result{mk(1000, 20)}}, path)
	if err == nil {
		t.Fatal("doubled allocs/op passed the comparison")
	}
	if !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("alloc regression error does not name the metric: %v", err)
	}
	// Old baselines without the column (all cells zero) skip the gate.
	if err := write(Report{Rev: "base", Results: []Result{mk(1000, 0)}}, path); err != nil {
		t.Fatal(err)
	}
	if err := compare(Report{Rev: "cur", Results: []Result{mk(1000, 50)}}, path); err != nil {
		t.Fatalf("pre-column baseline tripped the alloc gate: %v", err)
	}
	// But a true-zero cell in a baseline that has the column stays gated.
	mkCell := func(workload string, allocs float64) Result {
		r := mk(1000, allocs)
		r.Workload = workload
		return r
	}
	if err := write(Report{Rev: "base", Results: []Result{mkCell("uniform", 4), mkCell("zipf", 0)}}, path); err != nil {
		t.Fatal(err)
	}
	err = compare(Report{Rev: "cur", Results: []Result{mkCell("uniform", 4), mkCell("zipf", 50)}}, path)
	if err == nil || !strings.Contains(err.Error(), "zipf") {
		t.Fatalf("regression against a true-zero allocs baseline cell not flagged: %v", err)
	}
}
