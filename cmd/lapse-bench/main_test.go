package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestQuickBenchWritesReport runs the quick sweep end to end and validates
// the BENCH_<rev>.json schema CI archives.
func TestQuickBenchWritesReport(t *testing.T) {
	report := run(true, "test")
	if len(report.Results) != 3*1*3 { // workloads × parallelisms × modes
		t.Fatalf("quick sweep produced %d results, want 9", len(report.Results))
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	if err := write(report, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if got.Rev != "test" || !got.Quick {
		t.Fatalf("report header = rev %q quick %v", got.Rev, got.Quick)
	}
	var sawReplication bool
	for _, r := range got.Results {
		if r.Ops <= 0 || r.Seconds <= 0 || r.Throughput <= 0 {
			t.Fatalf("degenerate result: %+v", r)
		}
		if r.Mode == "replication" {
			sawReplication = true
			if r.Workload != "uniform" && r.ReplicaHits == 0 {
				t.Fatalf("skewed replication run recorded no replica hits: %+v", r)
			}
		}
	}
	if !sawReplication {
		t.Fatal("no replication-mode results in the report")
	}
	// The headline: on the skewed workloads, replication needs far fewer
	// remote reads than relocation-only management.
	byKey := map[string]Result{}
	for _, r := range got.Results {
		byKey[r.Workload+"/"+r.Mode] = r
	}
	base, repl := byKey["w2vneg/relocation"], byKey["w2vneg/replication"]
	if repl.RemoteReads*2 > base.RemoteReads {
		t.Fatalf("w2vneg remote reads: replication %d vs relocation %d, expected a clear win",
			repl.RemoteReads, base.RemoteReads)
	}
}
