// Command lapse-sim regenerates the paper's figures and tables on the
// simulated cluster. Each subcommand reproduces one experiment; "all" runs
// everything (several minutes).
//
// Usage:
//
//	lapse-sim <experiment> [-short]
//
// Experiments: fig1 fig6 fig7 fig8 fig9 table1 table3 table4 table5 ablation all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lapse/internal/harness"
	"lapse/internal/kv"
	"lapse/internal/loc"
)

func main() {
	flag.Usage = usage
	short := flag.Bool("short", false, "run the reduced parallelism sweep")
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	pars := harness.PaperParallelism()
	if *short {
		pars = harness.ShortParallelism()
	}
	what := strings.ToLower(flag.Arg(0))
	run := map[string]func(){
		"fig1": func() {
			fmt.Print(harness.Render("Figure 1: KGE (RESCAL) epoch runtime", harness.Figure1(pars)))
		},
		"fig6": func() {
			fmt.Print(harness.Render("Figure 6a: MF epoch runtime (10x1 matrix)", harness.Figure6("10x1", pars)))
			fmt.Print(harness.Render("Figure 6b: MF epoch runtime (3x3 matrix)", harness.Figure6("3x3", pars)))
		},
		"fig7": func() {
			fmt.Print(harness.Render("Figure 7a: ComplEx-Small", harness.Figure7(harness.ComplExSmall, pars)))
			fmt.Print(harness.Render("Figure 7b: ComplEx-Large", harness.Figure7(harness.ComplExLarge, pars)))
			fmt.Print(harness.Render("Figure 7c: RESCAL-Large", harness.Figure7(harness.RescalLarge, pars)))
		},
		"fig8": func() {
			fmt.Print(harness.RenderFigure8(harness.Figure8(pars, 5)))
		},
		"fig9": func() {
			fmt.Print(harness.Render("Figure 9a: MF vs stale PS and low-level (10x1 matrix)", harness.Figure9("10x1", pars)))
		},
		"table1": func() {
			fmt.Println("Table 1 (consistency guarantees) is verified by executable checks:")
			fmt.Println("  go test ./internal/consistency/ -run TestTable1 -v")
			fmt.Println("  go test ./internal/core/ -run 'Theorem3|CachesOff' -v")
		},
		"table3": func() {
			fmt.Println("Table 3: location management strategies (measured, N=8 nodes, K=1024 keys)")
			for _, row := range loc.MeasureTable3(kv.Key(1024), 8) {
				fmt.Println("  " + row.String())
			}
		},
		"table4": func() {
			fmt.Print(harness.RenderTable4(harness.Table4()))
		},
		"table5": func() {
			fmt.Print(harness.RenderTable5(harness.Table5(pars)))
		},
		"ablation": func() {
			par := pars[len(pars)-1]
			fmt.Print(harness.RenderAblation(harness.Ablation(par), par))
		},
	}
	if what == "all" {
		for _, name := range []string{"fig1", "fig6", "fig7", "fig8", "fig9", "table1", "table3", "table4", "table5", "ablation"} {
			run[name]()
			fmt.Println()
		}
		return
	}
	fn, ok := run[what]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", what)
		usage()
		os.Exit(2)
	}
	fn()
}

func usage() {
	fmt.Fprintf(os.Stderr, `lapse-sim regenerates the experiments of "Dynamic Parameter Allocation in
Parameter Servers" (VLDB 2020) on a simulated cluster.

usage: lapse-sim [-short] <experiment>

experiments:
  fig1      KGE (RESCAL) epoch runtime: classic PS vs fast-local vs Lapse
  fig6      matrix factorization epoch runtime (two matrices)
  fig7      knowledge-graph embeddings (ComplEx-S, ComplEx-L, RESCAL-L)
  fig8      word vectors: epoch runtime and error over epochs/time
  fig9      MF vs the stale PS (Petuum) and a low-level implementation
  table1    pointer to the consistency-guarantee checks
  table3    location-management strategy costs
  table4    per-task access statistics (single thread)
  table5    Lapse reads/relocations on ComplEx-Large
  ablation  location caching and DPA-vs-fast-local-access study
  all       everything above
`)
}
