package main

import (
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// reservePorts picks n distinct loopback ports by briefly binding them. The
// tiny window between release and the node binding again is the standard
// test-only compromise; production deployments pass fixed ports.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs
}

// TestThreeProcessCluster is the end-to-end deployment check: build the real
// binary, start a 3-node cluster as 3 OS processes — once with a single
// server shard per node and once with 4, each on the auto-selected
// shared-memory rings (same-host processes) and once more forced onto plain
// TCP — and require every process to exit 0, which, for node 0, includes
// verifying the converged parameter values pulled across process boundaries.
func TestThreeProcessCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and launches subprocesses")
	}
	bin := filepath.Join(t.TempDir(), "lapse-node")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	for _, tc := range []struct {
		transport string
		shards    int
	}{
		{"shm", 1}, {"shm", 4}, {"tcp", 1}, {"tcp", 4},
	} {
		t.Run(fmt.Sprintf("%s/shards=%d", tc.transport, tc.shards), func(t *testing.T) {
			addrs := reservePorts(t, 3)
			addrList := strings.Join(addrs, ",")
			// A private ring directory per cell: concurrent test runs must
			// not rendezvous through the default Addrs-derived path.
			shmDir := filepath.Join(t.TempDir(), "rings")

			type result struct {
				node int
				out  []byte
				err  error
			}
			results := make(chan result, 3)
			for node := 0; node < 3; node++ {
				go func(node int) {
					args := []string{
						"-node", fmt.Sprint(node),
						"-addrs", addrList,
						"-workers", "2",
						"-shards", fmt.Sprint(tc.shards),
						"-variant", "lapse",
						"-keys", "48",
						"-iters", "3",
					}
					if tc.transport == "tcp" {
						args = append(args, "-no-shm")
					} else {
						args = append(args, "-shm-dir", shmDir)
					}
					out, err := exec.Command(bin, args...).CombinedOutput()
					results <- result{node, out, err}
				}(node)
			}
			for i := 0; i < 3; i++ {
				r := <-results
				if r.err != nil {
					t.Errorf("node %d failed: %v\n%s", r.node, r.err, r.out)
					continue
				}
				if !strings.Contains(string(r.out), "converged") {
					t.Errorf("node %d output missing convergence line:\n%s", r.node, r.out)
				}
				if want := "transport=" + tc.transport; !strings.Contains(string(r.out), want) {
					t.Errorf("node %d did not report %s:\n%s", r.node, want, r.out)
				}
			}
		})
	}
}
