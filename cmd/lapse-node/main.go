// Command lapse-node runs one cluster node as an OS process, so a parameter
// server can be deployed as N communicating processes over real transports —
// the deployment mode of the paper's actual system — instead of the
// in-process simulation of cmd/lapse-sim.
//
// Every process is started with the same topology (the full address list and
// shared workload parameters) plus its own node index; the processes find
// each other over TCP (dials retry while peers are still starting), run the
// quickstart workload, and node 0 verifies that the cluster converged to the
// analytically known result before everyone tears down. Traffic between
// processes on the same host automatically rides shared-memory rings
// (internal/transport/shm) instead of loopback TCP; -no-shm forces plain
// TCP, and cross-host links always use TCP.
//
// Usage (3 nodes on one machine):
//
//	lapse-node -node 0 -addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	lapse-node -node 1 -addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	lapse-node -node 2 -addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//
// The workload mirrors the quickstart example across processes: each worker
// localizes a disjoint share of the keys (on variants with dynamic parameter
// allocation), then every worker pushes 1 to every value for -iters rounds,
// synchronizing on the cluster-wide barrier after each round; finally worker
// 0 of node 0 pulls everything back through the regular read path and checks
// each value equals workers × nodes × iters. Exit status 0 means this node —
// and, on node 0, the whole cluster's converged state — checked out.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"lapse/internal/cluster"
	"lapse/internal/core"
	"lapse/internal/driver"
	"lapse/internal/kv"
	"lapse/internal/metrics"
	"lapse/internal/obs"
)

func main() {
	var (
		node      = flag.Int("node", -1, "this process's node index (required)")
		addrList  = flag.String("addrs", "", "comma-separated listen addresses of all nodes (required)")
		workers   = flag.Int("workers", 2, "worker threads per node")
		shards    = flag.Int("shards", 1, "server shards per node (must be identical in every process)")
		variant   = flag.String("variant", "lapse", "parameter-server variant (classic, classic-fast, lapse, lapse-cached, ssp-client, ssp-server)")
		keys      = flag.Int("keys", 64, "number of parameters")
		valLen    = flag.Int("vallen", 2, "values per parameter")
		iters     = flag.Int("iters", 3, "push rounds")
		staleness = flag.Int("staleness", 1, "SSP staleness bound (stale variants)")
		noSHM     = flag.Bool("no-shm", false, "force TCP even between same-host processes")
		shmDir    = flag.String("shm-dir", "", "shared-memory ring directory (default derived from -addrs; all co-located processes must agree)")
		pin       = flag.Bool("pin", false, "pin each server shard goroutine to one CPU core")
		quiet     = flag.Bool("q", false, "suppress the per-node summary")
		metricsAt = flag.String("metrics-addr", "", "serve /metrics, /debug/trace, /debug/stats over HTTP on this address (empty = off)")
		linger    = flag.Duration("linger", 0, "keep the process (and its metrics endpoint) alive this long after the workload finishes")
		serving   = flag.Duration("serving", 0, "enable the lease-based serving tier with this TTL and re-verify convergence through MultiGet (lapse variants only; 0 = off)")
	)
	flag.Parse()
	addrs := strings.Split(*addrList, ",")
	if *addrList == "" || *node < 0 || *node >= len(addrs) {
		fmt.Fprintln(os.Stderr, "lapse-node: -node and -addrs are required; -node must index -addrs")
		flag.Usage()
		os.Exit(2)
	}
	opts := nodeOptions{noSHM: *noSHM, shmDir: *shmDir, pin: *pin, quiet: *quiet,
		metricsAddr: *metricsAt, linger: *linger, serving: *serving}
	if err := run(*node, addrs, *workers, *shards, driver.Kind(*variant), *keys, *valLen, *iters, *staleness, opts); err != nil {
		fmt.Fprintf(os.Stderr, "lapse-node %d: %v\n", *node, err)
		os.Exit(1)
	}
}

// nodeOptions carries the deployment knobs that are not workload parameters.
type nodeOptions struct {
	noSHM       bool
	shmDir      string
	pin         bool
	quiet       bool
	metricsAddr string
	linger      time.Duration
	serving     time.Duration
}

func run(node int, addrs []string, workers, shards int, kind driver.Kind, nKeys, valLen, iters, staleness int, opts nodeOptions) error {
	cl, err := driver.NewCluster(driver.Deployment{
		Nodes:          len(addrs),
		WorkersPerNode: workers,
		Shards:         shards,
		TCP: &driver.TCPDeployment{Addrs: addrs, Node: node,
			DisableSHM: opts.noSHM, SHMDir: opts.shmDir},
	})
	if err != nil {
		return err
	}
	layout := kv.NewUniformLayout(kv.Key(nKeys), valLen)
	buildOpts := driver.Options{Staleness: staleness, PinShards: opts.pin}
	if opts.serving > 0 {
		buildOpts.Serving = &core.ServingConfig{TTL: opts.serving}
	}
	ps := driver.Build(kind, cl, layout, buildOpts)

	if opts.metricsAddr != "" {
		srv, err := obs.Serve(opts.metricsAddr, obs.Source{
			Node:      node,
			Stats:     func() metrics.Totals { return metrics.Sum(ps.Stats()) },
			Latencies: ps.Latencies,
			Trace:     cl.Trace(),
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		if !opts.quiet {
			fmt.Printf("lapse-node %d: metrics on http://%s/metrics\n", node, srv.Addr())
		}
	}

	// A failed link (peer crashed, wrong address) silently drops its
	// messages, which would leave workers blocked on futures or barriers
	// forever. Watch the transport and fail the whole process instead.
	go func() {
		for range time.Tick(200 * time.Millisecond) {
			if err := cl.Err(); err != nil {
				fmt.Fprintf(os.Stderr, "lapse-node %d: transport failed: %v\n", node, err)
				os.Exit(1)
			}
		}
	}()

	var failure atomic.Value
	cl.RunWorkers(func(_, worker int) {
		if err := runWorker(cl, ps, kind, worker, nKeys, valLen, iters, opts.serving > 0); err != nil {
			failure.Store(fmt.Errorf("worker %d: %w", worker, err))
		}
	})

	// Linger before teardown so the metrics endpoint stays scrapeable (the
	// cluster is still up — other nodes may also be lingering).
	if opts.linger > 0 {
		time.Sleep(opts.linger)
	}

	cl.Close()
	ps.Shutdown()
	if err, ok := failure.Load().(error); ok {
		return err
	}
	if err := cl.Err(); err != nil {
		return fmt.Errorf("transport: %w", err)
	}
	if !opts.quiet {
		s := cl.Net().Stats()
		fmt.Printf("lapse-node %d (%s, transport=%s): converged; sent %d remote msgs / %d bytes, %d loopback msgs\n",
			node, kind, driver.Transport(cl), s.RemoteMessages, s.RemoteBytes, s.LoopbackMessages)
	}
	return nil
}

// runWorker is the per-worker quickstart workload; worker 0 (on node 0)
// additionally verifies the converged values between the last two barriers,
// while every other worker is parked on the final barrier keeping its node's
// server responsive.
//
// The workload crosses iters+1 cluster-wide barriers. A worker that fails
// must still participate in the remaining ones (clocking so the stale PS's
// global clock keeps advancing), otherwise its error would deadlock every
// other worker — across all processes — instead of being reported.
func runWorker(cl *cluster.Cluster, ps driver.PS, kind driver.Kind, worker, nKeys, valLen, iters int, serving bool) error {
	h := ps.Handle(worker)
	barriersLeft := iters + 1
	defer func() {
		for ; barriersLeft > 0; barriersLeft-- {
			h.Clock()
			h.Barrier()
		}
	}()
	barrier := func() {
		h.Barrier()
		barriersLeft--
	}

	allKeys := make([]kv.Key, nKeys)
	for i := range allKeys {
		allKeys[i] = kv.Key(i)
	}
	ones := make([]float32, nKeys*valLen)
	for i := range ones {
		ones[i] = 1
	}

	if driver.SupportsLocalize(kind) {
		// Localize a disjoint per-worker share, exercising the
		// relocation protocol across process boundaries.
		total := cl.TotalWorkers()
		lo, hi := worker*nKeys/total, (worker+1)*nKeys/total
		if err := h.Localize(allKeys[lo:hi]); err != nil {
			return fmt.Errorf("localize: %w", err)
		}
	}
	for iter := 0; iter < iters; iter++ {
		if err := h.Push(allKeys, ones); err != nil {
			return fmt.Errorf("push round %d: %w", iter, err)
		}
		h.Clock()
		barrier()
	}
	if serving {
		// Every worker re-reads a hot prefix of the key space through the
		// serving tier: the first MultiGet misses and takes leases, the rest
		// are served from the node-local cache, so a deployment smoke test
		// can assert nonzero lapse_serving_hits_total on /metrics.
		if err := runServingReads(cl, h, nKeys, valLen, iters); err != nil {
			return err
		}
	}
	if worker == 0 {
		want := float32(cl.TotalWorkers() * iters)
		dst := make([]float32, nKeys*valLen)
		if err := h.Pull(allKeys, dst); err != nil {
			return fmt.Errorf("verification pull: %w", err)
		}
		for i, v := range dst {
			if v != want {
				return fmt.Errorf("value %d = %v, want %v: cluster did not converge", i, v, want)
			}
		}
	}
	// Hold every node up until verification finished, so no process
	// tears its transport down while node 0 is still pulling.
	barrier()
	return h.WaitAll()
}

// multiGetter is the serving-tier batched read path; only the Lapse variants
// implement it.
type multiGetter interface {
	MultiGet(keys []kv.Key, dst []float32) *kv.Future
}

// runServingReads verifies the converged prefix of the key space through the
// serving tier. Repeated MultiGets of the same keys keep hitting the lease
// cache, which is what the CI serving smoke job scrapes for.
func runServingReads(cl *cluster.Cluster, h kv.KV, nKeys, valLen, iters int) error {
	mg, ok := h.(multiGetter)
	if !ok {
		return fmt.Errorf("-serving requires a variant with a MultiGet read path (lapse, lapse-cached)")
	}
	hot := nKeys
	if hot > 8 {
		hot = 8
	}
	// Stride the hot set across the whole key space: a contiguous prefix
	// would be local to one node, whose reads bypass the lease cache — every
	// node must take some cross-node leases for its hit counters to move.
	keys := make([]kv.Key, hot)
	for i := range keys {
		keys[i] = kv.Key(i * nKeys / hot)
	}
	dst := make([]float32, hot*valLen)
	want := float32(cl.TotalWorkers() * iters)
	for r := 0; r < 32; r++ {
		if err := mg.MultiGet(keys, dst).Wait(); err != nil {
			return fmt.Errorf("serving read %d: %w", r, err)
		}
		for i, v := range dst {
			if v != want {
				return fmt.Errorf("serving read %d: value %d = %v, want %v", r, i, v, want)
			}
		}
	}
	return nil
}
