package lapse_test

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"lapse"
)

// TestReplicateFacade drives the hot-key replication subsystem through the
// public API: replicated keys serve locally, stats surface the replica
// counters, and replicas converge to the merged value.
func TestReplicateFacade(t *testing.T) {
	hot := []lapse.Key{0, 1, 2, 3}
	cl, err := lapse.NewCluster(lapse.Config{
		Nodes: 2, WorkersPerNode: 2, Keys: 16, ValueLength: 2,
		Replicate:        hot,
		ReplicaSyncEvery: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ones := make([]float32, len(hot)*2)
	for i := range ones {
		ones[i] = 1
	}
	err = cl.Run(func(w *lapse.Worker) error {
		if err := w.Push(hot, ones); err != nil {
			return err
		}
		buf := make([]float32, len(hot)*2)
		return w.Pull(hot, buf)
	})
	if err != nil {
		t.Fatal(err)
	}
	st := cl.Stats()
	if st.ReplicaHits == 0 {
		t.Fatalf("ReplicaHits = 0 after pulling replicated keys; stats %+v", st)
	}
	if st.RemoteReads != 0 {
		t.Fatalf("RemoteReads = %d for replicated-only workload, want 0", st.RemoteReads)
	}

	// The background sync converges every replica; verify through worker
	// pulls on each node (eventual: poll with a deadline).
	want := float32(cl.Workers())
	deadline := time.Now().Add(5 * time.Second)
	for {
		cl.SyncReplicas()
		var diverged atomic.Bool
		err = cl.Run(func(w *lapse.Worker) error {
			buf := make([]float32, len(hot)*2)
			if err := w.Pull(hot, buf); err != nil {
				return err
			}
			for _, v := range buf {
				if v != want {
					diverged.Store(true)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !diverged.Load() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replicas did not converge")
		}
		time.Sleep(time.Millisecond)
	}
	if st := cl.Stats(); st.ReplicaSyncMessages == 0 {
		t.Fatal("ReplicaSyncMessages = 0 after convergence")
	}

	// The access tracker saw the hot keys.
	hotSeen := cl.HotKeys(len(hot))
	if len(hotSeen) == 0 {
		t.Fatal("HotKeys returned nothing after a hot-key workload")
	}
}

func TestReplicateRejectsOutOfRangeKey(t *testing.T) {
	_, err := lapse.NewCluster(lapse.Config{
		Nodes: 1, WorkersPerNode: 1, Keys: 4, ValueLength: 1,
		Replicate: []lapse.Key{99},
	})
	if err == nil {
		t.Fatal("NewCluster accepted a replicated key outside the layout")
	}
}

// TestAsyncTryWait pins the Async completion API: TryWait surfaces the
// operation's error, which Done (by design) discards.
func TestAsyncTryWait(t *testing.T) {
	cl, err := lapse.NewCluster(lapse.Config{Nodes: 1, WorkersPerNode: 1, Keys: 4, ValueLength: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Run(func(w *lapse.Worker) error {
		// A buffer-size mismatch fails the operation immediately.
		bad := w.PullAsync([]lapse.Key{0}, make([]float32, 1))
		done, err := bad.TryWait()
		if !done {
			return errors.New("failed op not done")
		}
		if err == nil {
			return errors.New("TryWait returned nil error for failed op")
		}
		if !bad.Done() {
			return errors.New("Done disagrees with TryWait")
		}
		// A successful operation completes with nil error.
		good := w.PullAsync([]lapse.Key{0}, make([]float32, 2))
		if err := good.Wait(); err != nil {
			return err
		}
		done, err = good.TryWait()
		if !done || err != nil {
			return errors.New("TryWait after Wait should be (true, nil)")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
